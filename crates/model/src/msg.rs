//! Message taxonomy and bit-level size accounting.
//!
//! Every transmission in the model is charged to a channel by its size in
//! bits, and the evaluation's second metric is precisely "uplink
//! communication cost per query (bits/query)", so sizes are part of the
//! domain model rather than the simulator.
//!
//! Priority classes follow §4 of the paper: invalidation reports have the
//! highest priority (class 0, preemptive so reports go out exactly on the
//! period), checking requests and validity reports come next (class 1),
//! and everything else (query requests, data items) is served
//! first-come-first-served in class 2.

use crate::ids::ItemId;
use crate::units::{bits_of_bytes, bits_per_id, Bits};

/// Priority class of invalidation reports.
pub const CLASS_REPORT: usize = 0;
/// Priority class of checking requests and validity reports.
pub const CLASS_CHECK: usize = 1;
/// Priority class of query requests and data items.
pub const CLASS_DATA: usize = 2;
/// Total number of priority classes.
pub const NUM_CLASSES: usize = 3;

/// Parameters entering message-size formulas.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SizeParams {
    /// Database size `N` (determines id width `log₂N`).
    pub db_size: u64,
    /// Number of item groups for grouped checking (determines the group
    /// id width `log₂G`).
    pub group_count: u64,
    /// Timestamp width `b_T` in bits.
    pub timestamp_bits: f64,
    /// Fixed per-message framing overhead in bits.
    pub header_bits: f64,
    /// Control message size in bytes (Table 1: 512), charged for uplink
    /// query requests.
    pub control_bytes: u64,
    /// Data item payload in bytes (Table 1: 8192).
    pub item_bytes: u64,
}

impl SizeParams {
    /// Width of one item id in bits.
    #[inline]
    pub fn id_bits(&self) -> Bits {
        bits_per_id(self.db_size)
    }

    /// Size of one `(oid, timestamp)` record in bits.
    #[inline]
    pub fn record_bits(&self) -> Bits {
        self.id_bits() + self.timestamp_bits
    }

    /// Width of one group id in bits.
    #[inline]
    pub fn group_id_bits(&self) -> Bits {
        bits_per_id(self.group_count)
    }
}

/// A message sent on the uplink channel (client → server).
#[derive(Clone, Debug, PartialEq)]
pub enum UplinkKind {
    /// Request for a data item missing from (or invalid in) the cache.
    /// Charged at the Table 1 control-message size.
    QueryRequest {
        /// The requested item.
        item: ItemId,
    },
    /// An adaptive-scheme client reporting the timestamp of the last
    /// invalidation report it received (`Tlb`) — the whole point of
    /// AFW/AAW is that this is the *only* uplink cost of salvaging a cache.
    TlbReport {
        /// The client's `Tlb` in seconds.
        tlb_secs: f64,
    },
    /// A simple-checking client asking the server which of its cached
    /// items are still valid; carries one `(oid, version)` record per
    /// entry (versions as raw seconds to keep this crate sim-agnostic).
    CheckRequest {
        /// The `(oid, version)` records.
        entries: Vec<(ItemId, f64)>,
    },
    /// A grouped-checking client asking for the update history of the
    /// groups it caches: one `(group, Tlb)` record per group — the
    /// GCORE-style uplink reduction (extension).
    GroupCheckRequest {
        /// The `(group id, Tlb)` records.
        groups: Vec<(u32, f64)>,
    },
}

impl UplinkKind {
    /// Size of this message in bits under `p`.
    pub fn size_bits(&self, p: &SizeParams) -> Bits {
        match self {
            UplinkKind::QueryRequest { .. } => p.header_bits + bits_of_bytes(p.control_bytes),
            UplinkKind::TlbReport { .. } => p.header_bits + p.timestamp_bits,
            UplinkKind::CheckRequest { entries } => {
                p.header_bits + entries.len() as f64 * p.record_bits()
            }
            UplinkKind::GroupCheckRequest { groups } => {
                p.header_bits + groups.len() as f64 * (p.group_id_bits() + p.timestamp_bits)
            }
        }
    }

    /// `true` when this message counts toward the paper's "uplink cost for
    /// validity checking" metric (query requests do not — every scheme
    /// pays those equally, and the paper's BS curve sits at exactly zero).
    pub fn is_validity_traffic(&self) -> bool {
        matches!(
            self,
            UplinkKind::TlbReport { .. }
                | UplinkKind::CheckRequest { .. }
                | UplinkKind::GroupCheckRequest { .. }
        )
    }

    /// The channel priority class of this message (§4).
    pub fn class(&self) -> usize {
        match self {
            UplinkKind::QueryRequest { .. } => CLASS_DATA,
            UplinkKind::TlbReport { .. }
            | UplinkKind::CheckRequest { .. }
            | UplinkKind::GroupCheckRequest { .. } => CLASS_CHECK,
        }
    }
}

/// A message sent on the downlink channel (server → clients).
#[derive(Clone, Debug, PartialEq)]
pub enum DownlinkKind {
    /// A periodic invalidation report, broadcast to every connected
    /// client. `content_bits` is computed by the report builder from the
    /// paper's formulas; the header is added here.
    InvalidationReport {
        /// Size of the report body in bits.
        content_bits: Bits,
    },
    /// A data item sent in response to a query request.
    DataItem {
        /// The item being delivered.
        item: ItemId,
    },
    /// A validity report answering a simple-checking request: one bit per
    /// checked item plus the server timestamp it is valid as of.
    ValidityReport {
        /// Number of items checked (one bit each on the wire).
        checked: u32,
        /// The checked items that are still valid.
        valid: Vec<ItemId>,
        /// Server time the verdict holds as of (raw seconds).
        asof_secs: f64,
    },
    /// Answer to a grouped-checking request: the stale items of the
    /// checked groups (extension). `covered = false` means some group's
    /// `Tlb` predates the retention window and the client must drop its
    /// cache.
    GroupValidity {
        /// Items of the checked groups updated since their `Tlb`s.
        stale: Vec<ItemId>,
        /// `false` when the retention window was exceeded.
        covered: bool,
        /// Server time the verdict holds as of (raw seconds).
        asof_secs: f64,
    },
}

impl DownlinkKind {
    /// Size of this message in bits under `p`.
    pub fn size_bits(&self, p: &SizeParams) -> Bits {
        match self {
            DownlinkKind::InvalidationReport { content_bits } => p.header_bits + content_bits,
            DownlinkKind::DataItem { .. } => p.header_bits + bits_of_bytes(p.item_bytes),
            DownlinkKind::ValidityReport { checked, .. } => {
                p.header_bits + *checked as f64 + p.timestamp_bits
            }
            DownlinkKind::GroupValidity { stale, .. } => {
                p.header_bits + 1.0 + p.timestamp_bits + stale.len() as f64 * p.id_bits()
            }
        }
    }

    /// The channel priority class of this message (§4).
    pub fn class(&self) -> usize {
        match self {
            DownlinkKind::InvalidationReport { .. } => CLASS_REPORT,
            DownlinkKind::ValidityReport { .. } | DownlinkKind::GroupValidity { .. } => CLASS_CHECK,
            DownlinkKind::DataItem { .. } => CLASS_DATA,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> SizeParams {
        SizeParams {
            db_size: 10_000,
            group_count: 64,
            timestamp_bits: 48.0,
            header_bits: 64.0,
            control_bytes: 512,
            item_bytes: 8192,
        }
    }

    #[test]
    fn id_and_record_width() {
        let p = params();
        assert_eq!(p.id_bits(), 14.0); // ceil(log2 10000)
        assert_eq!(p.record_bits(), 62.0);
    }

    #[test]
    fn query_request_is_a_control_message() {
        let p = params();
        let m = UplinkKind::QueryRequest { item: ItemId(3) };
        assert_eq!(m.size_bits(&p), 64.0 + 4096.0);
        assert_eq!(m.class(), CLASS_DATA);
        assert!(!m.is_validity_traffic());
    }

    #[test]
    fn tlb_report_is_tiny() {
        let p = params();
        let m = UplinkKind::TlbReport { tlb_secs: 123.0 };
        assert_eq!(m.size_bits(&p), 64.0 + 48.0);
        assert_eq!(m.class(), CLASS_CHECK);
        assert!(m.is_validity_traffic());
    }

    #[test]
    fn check_request_scales_with_items() {
        let p = params();
        let entries: Vec<(ItemId, f64)> = (0..200).map(|i| (ItemId(i), 0.0)).collect();
        let m = UplinkKind::CheckRequest { entries };
        assert_eq!(m.size_bits(&p), 64.0 + 200.0 * 62.0);
        assert!(m.is_validity_traffic());
        let empty = UplinkKind::CheckRequest { entries: vec![] };
        assert_eq!(empty.size_bits(&p), 64.0);
    }

    #[test]
    fn data_item_dominates_downlink() {
        let p = params();
        let m = DownlinkKind::DataItem { item: ItemId(1) };
        assert_eq!(m.size_bits(&p), 64.0 + 65_536.0);
        assert_eq!(m.class(), CLASS_DATA);
    }

    #[test]
    fn report_priority_is_highest() {
        let p = params();
        let m = DownlinkKind::InvalidationReport {
            content_bits: 1000.0,
        };
        assert_eq!(m.size_bits(&p), 1064.0);
        assert_eq!(m.class(), CLASS_REPORT);
    }

    #[test]
    fn group_check_request_counts_groups_not_items() {
        let p = params();
        let m = UplinkKind::GroupCheckRequest {
            groups: vec![(0, 10.0), (5, 10.0), (63, 12.0)],
        };
        // 3 * (6 + 48) + header — far below 3 cached items' worth of
        // full-cache checking once caches grow.
        assert_eq!(m.size_bits(&p), 64.0 + 3.0 * 54.0);
        assert_eq!(m.class(), CLASS_CHECK);
        assert!(m.is_validity_traffic());
    }

    #[test]
    fn group_validity_sizes_by_stale_items() {
        let p = params();
        let m = DownlinkKind::GroupValidity {
            stale: vec![ItemId(1), ItemId(2)],
            covered: true,
            asof_secs: 5.0,
        };
        assert_eq!(m.size_bits(&p), 64.0 + 1.0 + 48.0 + 2.0 * 14.0);
        assert_eq!(m.class(), CLASS_CHECK);
    }

    #[test]
    fn validity_report_is_bitmap_sized() {
        let p = params();
        let m = DownlinkKind::ValidityReport {
            checked: 200,
            valid: vec![ItemId(1), ItemId(2)],
            asof_secs: 9.0,
        };
        assert_eq!(m.size_bits(&p), 64.0 + 200.0 + 48.0);
        assert_eq!(m.class(), CLASS_CHECK);
    }
}
