//! Strongly typed identifiers.
//!
//! The database is "a collection of N named data items" (§2); items are the
//! unit of update, query, caching, and invalidation. Clients are the mobile
//! hosts. Both are dense indices, so `u32` newtypes keep hot structures
//! small (see the type-size guidance in the Rust perf book) while
//! preventing accidental cross-use.

use std::fmt;

/// Identifier of a database item, `0 .. N`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ItemId(pub u32);

impl ItemId {
    /// The dense index of this item.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for ItemId {
    #[inline]
    fn from(v: u32) -> Self {
        ItemId(v)
    }
}

impl fmt::Debug for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "item#{}", self.0)
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Identifier of a mobile client, `0 .. num_clients`.
///
/// `u32` since the struct-of-arrays client core: million-client
/// populations overflow the previous `u16` index space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ClientId(pub u32);

impl ClientId {
    /// The dense index of this client.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for ClientId {
    #[inline]
    fn from(v: u32) -> Self {
        ClientId(v)
    }
}

impl fmt::Debug for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "client#{}", self.0)
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn item_id_roundtrip() {
        let id = ItemId::from(42u32);
        assert_eq!(id.index(), 42);
        assert_eq!(format!("{id}"), "42");
        assert_eq!(format!("{id:?}"), "item#42");
    }

    #[test]
    fn client_id_roundtrip() {
        let id = ClientId::from(7u32);
        assert_eq!(id.index(), 7);
        assert_eq!(format!("{id:?}"), "client#7");
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(ItemId(1));
        set.insert(ItemId(1));
        set.insert(ItemId(2));
        assert_eq!(set.len(), 2);
        assert!(ItemId(1) < ItemId(2));
    }

    #[test]
    fn type_sizes_stay_small() {
        // Hot structures index by these; keep them word-fraction sized.
        assert_eq!(std::mem::size_of::<ItemId>(), 4);
        assert_eq!(std::mem::size_of::<ClientId>(), 4);
    }
}
