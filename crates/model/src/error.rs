//! Typed configuration errors.
//!
//! [`SimConfig::validate`](crate::SimConfig::validate) and everything
//! downstream of it (`Simulation::new`, `run`, `run_figure`) report
//! invalid parameter combinations as a [`ConfigError`] instead of a bare
//! `String`, so callers can match on the violated constraint while
//! `Display` keeps the human-readable message.

use std::fmt;

/// A violated [`SimConfig`](crate::SimConfig) constraint.
///
/// Each variant names the offending field (or pattern component) and the
/// rejected value; `Display` renders the same messages the stringly-typed
/// predecessor produced.
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// A parameter that must be strictly positive (and finite) is not.
    NotPositive {
        /// Name of the offending `SimConfig` field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A parameter that must be non-negative (and finite) is not.
    Negative {
        /// Name of the offending `SimConfig` field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// An integer count that must be at least 1 is zero.
    ZeroCount {
        /// Name of the offending `SimConfig` field.
        field: &'static str,
    },
    /// A fraction or probability fell outside its admissible interval.
    OutOfRange {
        /// Name of the offending `SimConfig` field.
        field: &'static str,
        /// The rejected value.
        value: f64,
        /// The admissible interval, rendered like `[0, 1]` or `(0, 1)`.
        bounds: &'static str,
    },
    /// A hot/cold pattern with `hot_lo > hot_hi`.
    EmptyHotRegion {
        /// First hot item (inclusive).
        hot_lo: u32,
        /// Last hot item (inclusive).
        hot_hi: u32,
    },
    /// A hot region extending past the end of the database.
    HotRegionOutOfBounds {
        /// Last hot item (inclusive).
        hot_hi: u32,
        /// Database size the region must fit in.
        db_size: u32,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ConfigError::NotPositive { field, value } => {
                write!(f, "{field} must be positive and finite, got {value}")
            }
            ConfigError::Negative { field, value } => {
                write!(f, "{field} must be non-negative, got {value}")
            }
            ConfigError::ZeroCount { field } => {
                write!(f, "{field} must be at least 1")
            }
            ConfigError::OutOfRange {
                field,
                value,
                bounds,
            } => {
                write!(f, "{field} out of {bounds}: {value}")
            }
            ConfigError::EmptyHotRegion { hot_lo, hot_hi } => {
                write!(f, "hot region empty: [{hot_lo}, {hot_hi}]")
            }
            ConfigError::HotRegionOutOfBounds { hot_hi, db_size } => {
                write!(
                    f,
                    "hot region end {hot_hi} outside database of {db_size} items"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_field_and_value() {
        let e = ConfigError::NotPositive {
            field: "sim_time_secs",
            value: -3.0,
        };
        assert_eq!(
            e.to_string(),
            "sim_time_secs must be positive and finite, got -3"
        );
        let e = ConfigError::OutOfRange {
            field: "p_disconnect",
            value: 1.5,
            bounds: "[0, 1]",
        };
        assert_eq!(e.to_string(), "p_disconnect out of [0, 1]: 1.5");
        let e = ConfigError::ZeroCount { field: "db_size" };
        assert_eq!(e.to_string(), "db_size must be at least 1");
    }

    #[test]
    fn is_a_std_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&ConfigError::ZeroCount {
            field: "num_clients",
        });
    }
}
