//! Simulation parameters and scheme selection.
//!
//! [`SimConfig::paper_default`] encodes the paper's **Table 1** ("System
//! Parameter Settings") and **Table 2** ("Query/Update Pattern") defaults.
//! Every figure of the evaluation is a sweep over one or two of these
//! fields; the `mobicache-experiments` crate builds those sweeps from this
//! type.
//!
//! Two parameters deserve a note (see DESIGN.md §3 for the full
//! reconciliation):
//!
//! * `items_per_query_mean` defaults to **1** (§5: "each query reads a data
//!   item"), not Table 1's 10, because the reported throughputs are only
//!   consistent with ≈ one item download per answered query on a
//!   10 000 bps downlink. The Table 1 value is available via the config.
//! * disconnection is decided per query completion (probability
//!   `p_disconnect` of a disconnection gap instead of a think gap), the
//!   only reading of §4 consistent with the reported magnitudes.

use crate::error::ConfigError;
use crate::faults::FaultPlan;
use crate::units::Bits;
use std::fmt;

/// The cache invalidation strategy run by server and clients.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Broadcasting timestamps without reconnection checking (§2.1, the
    /// `TS` scheme of Barbara & Imielinski): a client disconnected for more
    /// than `w` broadcast intervals drops its whole cache.
    TsNoCheck,
    /// Amnesic terminals (`AT`): the report lists only the items updated
    /// since the *previous* report; any missed report drops the cache.
    At,
    /// `TS` with validity checking after reconnection (§2.2, Wu/Yu/Chen) —
    /// called "simple checking" in the paper's plots. The reconnecting
    /// client uplinks cached ids + timestamps and the server answers with a
    /// validity report.
    SimpleChecking,
    /// Bit-sequences (`BS`, Jing et al., §2.3): a hierarchical bit-sequence
    /// report that can invalidate precisely after arbitrarily long
    /// disconnections, at the cost of `2N + b_T·log₂N` bits per report.
    Bs,
    /// Adaptive invalidation report with **fixed window** (§3.1, this
    /// paper): normally `IR(w)`; switches to `IR(BS)` for one period when a
    /// reconnecting client's uplinked `Tlb` requires deeper history.
    Afw,
    /// Adaptive invalidation report with **adjusting window** (§3.2, this
    /// paper): like AFW but may instead enlarge the `TS` window back to the
    /// oldest pending `Tlb` (tagged with a dummy record), choosing
    /// whichever report is smaller.
    Aaw,
    /// Signature scheme (`SIG`, Barbara & Imielinski): combined signatures
    /// broadcast instead of update lists. Included for library
    /// completeness; not part of the paper's simulation plots.
    Sig,
    /// GCORE-inspired grouped checking (after Wu/Yu/Chen, simplified):
    /// like simple checking, but the reconnecting client uplinks one
    /// `(group, Tlb)` record per cached *group* instead of one record per
    /// cached item, and the server answers with the stale items of those
    /// groups. Bounded by a retention window `W` — reconnections older
    /// than `W·L` drop the cache, the limitation §1 of the paper calls
    /// out. Extension; not part of the paper's simulation plots.
    Gcore,
}

impl Scheme {
    /// The four schemes compared in the paper's simulation study (§5).
    pub const PAPER_SET: [Scheme; 4] =
        [Scheme::Aaw, Scheme::Afw, Scheme::SimpleChecking, Scheme::Bs];

    /// All implemented schemes.
    pub const ALL: [Scheme; 8] = [
        Scheme::TsNoCheck,
        Scheme::At,
        Scheme::SimpleChecking,
        Scheme::Bs,
        Scheme::Afw,
        Scheme::Aaw,
        Scheme::Sig,
        Scheme::Gcore,
    ];

    /// The label used in the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::TsNoCheck => "broadcasting timestamps",
            Scheme::At => "amnesic terminals",
            Scheme::SimpleChecking => "simple checking",
            Scheme::Bs => "bit sequences",
            Scheme::Afw => "adaptive with fixed window",
            Scheme::Aaw => "adaptive with adjusting window",
            Scheme::Sig => "signatures",
            Scheme::Gcore => "grouped checking (GCORE-like)",
        }
    }

    /// A short identifier for CSV columns and bench names.
    pub fn short(self) -> &'static str {
        match self {
            Scheme::TsNoCheck => "ts",
            Scheme::At => "at",
            Scheme::SimpleChecking => "sc",
            Scheme::Bs => "bs",
            Scheme::Afw => "afw",
            Scheme::Aaw => "aaw",
            Scheme::Sig => "sig",
            Scheme::Gcore => "gcore",
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What the simple-checking client sends uplink after a long disconnection
/// (see DESIGN.md §3: §2.2 of the paper is ambiguous about the message
/// contents, so both readings are implemented).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CheckingMode {
    /// "the ids of all the cached data items and their corresponding
    /// timestamps" (§2.2 verbatim) — large, grows with cache size.
    FullCache,
    /// Only the cached items referenced by the pending query — small,
    /// closer to the magnitudes plotted in Figures 6/8.
    QueriedItems,
}

/// An access pattern over the database (Table 2).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Pattern {
    /// Every access uniform over the whole database.
    Uniform,
    /// Hot/cold regions: with probability `hot_prob` the access falls
    /// uniformly in items `[hot_lo, hot_hi]` (inclusive, zero-based);
    /// otherwise uniformly in the remainder of the database.
    HotCold {
        /// First item of the hot region (zero-based, inclusive).
        hot_lo: u32,
        /// Last item of the hot region (zero-based, inclusive).
        hot_hi: u32,
        /// Probability an access is hot.
        hot_prob: f64,
    },
    /// Zipf-distributed item popularity with exponent `theta`
    /// (extension; not in Table 2).
    Zipf {
        /// Skew exponent (`1.0` = classic Zipf).
        theta: f64,
    },
}

impl Pattern {
    /// The paper's HOTCOLD query pattern: items 1–100 hot with
    /// probability 0.8 (§5). Zero-based here: items `0..=99`.
    pub fn paper_hotcold() -> Pattern {
        Pattern::HotCold {
            hot_lo: 0,
            hot_hi: 99,
            hot_prob: 0.8,
        }
    }
}

/// Query and update patterns for a run (one row of Table 2).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Workload {
    /// Pattern used by client queries.
    pub query: Pattern,
    /// Pattern used by server update transactions.
    pub update: Pattern,
}

impl Workload {
    /// Table 2, UNIFORM column: queries and updates uniform over the DB.
    pub fn uniform() -> Workload {
        Workload {
            query: Pattern::Uniform,
            update: Pattern::Uniform,
        }
    }

    /// Table 2, HOTCOLD column: hot query region 1–100 with probability
    /// 0.8; updates uniform over the whole DB.
    pub fn hotcold() -> Workload {
        Workload {
            query: Pattern::paper_hotcold(),
            update: Pattern::Uniform,
        }
    }
}

/// Full configuration of one simulation run.
///
/// Construct with [`SimConfig::paper_default`] and adjust via the
/// `with_*` builders; call [`SimConfig::validate`] (the simulator does
/// this on entry) to catch inconsistent combinations early.
///
/// ```
/// use mobicache_model::{Scheme, SimConfig, Workload};
///
/// let cfg = SimConfig::paper_default()          // Table 1
///     .with_scheme(Scheme::Aaw)
///     .with_workload(Workload::hotcold())       // Table 2
///     .with_db_size(20_000);
/// assert!(cfg.validate().is_ok());
/// assert_eq!(cfg.cache_capacity_items(), 400);  // 2 % of N
/// assert_eq!(cfg.window_secs(), 200.0);         // w·L
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct SimConfig {
    /// Invalidation scheme under test.
    pub scheme: Scheme,
    /// Query/update patterns.
    pub workload: Workload,
    /// Simulated horizon in seconds (Table 1: 100 000).
    pub sim_time_secs: f64,
    /// Number of mobile clients (Table 1: 100; the
    /// struct-of-arrays client core scales to millions).
    pub num_clients: u32,
    /// Database size `N` in items (Table 1: 1 000 – 80 000).
    pub db_size: u32,
    /// Size of one data item in bytes (Table 1: 8192).
    pub item_bytes: u64,
    /// Client buffer pool as a fraction of the database size
    /// (Table 1: 1 % or 2 %).
    pub cache_fraction: f64,
    /// Broadcast period `L` in seconds (Table 1: 20).
    pub broadcast_period_secs: f64,
    /// Downlink bandwidth in bits/second (Table 1: 10 000).
    pub downlink_bps: f64,
    /// Uplink bandwidth in bits/second (Table 1: 1 % – 100 % of downlink).
    pub uplink_bps: f64,
    /// Control message size in bytes, charged for uplink query requests
    /// (Table 1: 512).
    pub control_bytes: u64,
    /// Mean think time between queries, seconds (Table 1: 100).
    pub mean_think_secs: f64,
    /// Mean number of items referenced by a query (see module docs;
    /// default 1, Table 1 lists 10).
    pub items_per_query_mean: f64,
    /// Mean number of items updated by one transaction (Table 1: 5).
    pub items_per_update_mean: f64,
    /// Mean update transaction inter-arrival time, seconds (Table 1: 100).
    pub mean_update_interarrival_secs: f64,
    /// Mean disconnection duration, seconds (Table 1: 200 – 8 000).
    pub mean_disconnect_secs: f64,
    /// Probability that the gap after a query is a disconnection rather
    /// than a think period (Table 1: 0.1 – 0.8).
    pub p_disconnect: f64,
    /// Invalidation broadcast window `w` in broadcast intervals
    /// (Table 1: 10).
    pub window_intervals: u32,
    /// Timestamp width `b_T` in bits used in report-size formulas.
    pub timestamp_bits: f64,
    /// Fixed per-message link/framing overhead in bits.
    pub header_bits: f64,
    /// Contents of the simple-checking uplink message.
    pub checking_mode: CheckingMode,
    /// Downlink channel organisation (§6's future-work extension; the
    /// paper itself uses [`DownlinkTopology::Shared`]).
    pub downlink_topology: DownlinkTopology,
    /// Probability that an individual connected client fails to receive a
    /// given broadcast report (fading). 0 in the paper's model; the
    /// robustness extension sweeps it.
    pub p_report_loss: f64,
    /// Client energy model: cost of transmitting one bit, in abstract
    /// energy units. §1 of the paper: *"uplink transmission requires much
    /// higher power from clients than downlink reception does"* — the
    /// default makes transmission 100× reception.
    pub energy_tx_per_bit: f64,
    /// Client energy cost of receiving one bit.
    pub energy_rx_per_bit: f64,
    /// Number of item groups for the GCORE-inspired grouped-checking
    /// scheme (items are partitioned round-robin into this many groups).
    pub gcore_groups: u32,
    /// Retention window `W` (in broadcast intervals) for grouped
    /// checking: reconnections older than `W·L` cannot be served and the
    /// client drops its cache — GCORE's documented limitation.
    pub gcore_retention_intervals: u32,
    /// Broadcast snooping (extension): the downlink is a broadcast
    /// medium, so every connected client overhears data items addressed
    /// to others; with snooping on, clients opportunistically cache them.
    /// Off in the paper's model.
    pub snoop_broadcasts: bool,
    /// Worker threads for the embarrassingly-parallel tick phases
    /// (report fan-out and data snooping). `1` (the default) runs fully
    /// serial; `0` means auto (one per available core). Any value yields
    /// **bit-identical** results: clients are sharded into contiguous
    /// index ranges and shard outputs are merged in client-index order
    /// before the scheduler or any RNG stream is touched.
    pub threads: u32,
    /// Minimum clients per worker chunk before a client-sharded phase
    /// (report fan-out, snoop delivery, the wake-up burst, the oracle
    /// scan) fans out to the worker pool; phases whose population would
    /// yield smaller chunks run serially on the calling thread. Purely a
    /// wall-time knob — results are bit-identical at any value.
    pub pool_min_shard_clients: u32,
    /// Minimum recency entries per worker chunk before the shared
    /// bit-sequences index build is sharded over the pool. Purely a
    /// wall-time knob — results are bit-identical at any value.
    pub pool_min_shard_items: u32,
    /// Fault-injection plan: bursty downlink loss (generalising
    /// [`SimConfig::p_report_loss`]), uplink loss with client
    /// retry/backoff, and scheduled server crashes. The default
    /// ([`FaultPlan::none`]) injects nothing and reproduces pre-fault
    /// results bit-for-bit.
    pub faults: FaultPlan,
    /// Cell topology and client mobility. The default
    /// ([`CellTopology::single`]) is one base station with no mobility
    /// and reproduces pre-mobility results bit-for-bit.
    pub cells: CellTopology,
    /// Master RNG seed; every stochastic process derives its own stream.
    pub seed: u64,
}

/// Cell topology and client-mobility process.
///
/// The paper simulates a single base station; real deployments trigger
/// the same long-disconnection recovery paths (AFW/AAW `Tlb` uplinks,
/// BS precise invalidation) by *roaming*: a client hops to a new cell
/// whose server never saw its `Tlb`. `CellTopology` models `cells`
/// servers, each broadcasting its own invalidation report on its own
/// downlink, with clients assigned round-robin and migrating on a
/// deterministic per-client mobility process (exponential cell
/// residency, dedicated `StreamId::Mobility` RNG streams).
///
/// A handoff departs the old cell (the client goes offline for
/// `handoff_secs`, exactly like a doze) and arrives at the destination
/// cell, where the carried `Tlb` is meaningless — the destination
/// server treats the roamer as a long-disconnected client.
///
/// [`CellTopology::single`] (the default) is **fully inert**: one cell,
/// zero mobility events, zero RNG draws, bit-identical to the legacy
/// single-BS path regardless of the other knob values.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CellTopology {
    /// Number of cells (base stations). `1` disables mobility entirely.
    pub cells: u32,
    /// Mean cell residency time, seconds (exponentially distributed
    /// interval between successive handoff attempts per client).
    pub mean_residency_secs: f64,
    /// Offline blackout per handoff, seconds: the radio gap between
    /// departing the old cell and arriving at the new one.
    pub handoff_secs: f64,
    /// Probability a handoff attempt actually roams to a *different*
    /// cell (otherwise the client re-associates with its current cell —
    /// an offline gap with no cell change). `1.0` always roams.
    pub p_roam: f64,
}

impl CellTopology {
    /// The legacy single-base-station topology (no mobility).
    pub fn single() -> CellTopology {
        CellTopology {
            cells: 1,
            mean_residency_secs: 2_000.0,
            handoff_secs: 10.0,
            p_roam: 1.0,
        }
    }

    /// `true` when the mobility process is active (more than one cell).
    pub fn is_multi(&self) -> bool {
        self.cells > 1
    }

    /// Checks parameter consistency (called from
    /// [`SimConfig::validate`]).
    ///
    /// # Errors
    /// Returns the first violated constraint as a [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cells == 0 {
            return Err(ConfigError::ZeroCount { field: "cells" });
        }
        if !self.is_multi() {
            // Single-cell is inert: the remaining knobs are never read.
            return Ok(());
        }
        if !(self.mean_residency_secs.is_finite() && self.mean_residency_secs > 0.0) {
            return Err(ConfigError::NotPositive {
                field: "mean_residency_secs",
                value: self.mean_residency_secs,
            });
        }
        if !(self.handoff_secs.is_finite() && self.handoff_secs >= 0.0) {
            return Err(ConfigError::Negative {
                field: "handoff_secs",
                value: self.handoff_secs,
            });
        }
        if !(0.0..=1.0).contains(&self.p_roam) {
            return Err(ConfigError::OutOfRange {
                field: "p_roam",
                value: self.p_roam,
                bounds: "[0, 1]",
            });
        }
        Ok(())
    }
}

/// Downlink channel organisation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DownlinkTopology {
    /// One shared channel for reports, validity reports and data (the
    /// paper's model; reports preempt).
    Shared,
    /// §6's future work: a dedicated broadcast channel carrying the
    /// invalidation reports, with the remaining bandwidth serving
    /// point-to-point traffic (data items and validity reports).
    /// `broadcast_share` ∈ (0, 1) is the fraction of the total downlink
    /// bandwidth assigned to the broadcast channel.
    Dedicated {
        /// Fraction of `downlink_bps` reserved for the broadcast channel.
        broadcast_share: f64,
    },
}

impl SimConfig {
    /// Table 1 defaults with the UNIFORM workload and the AAW scheme.
    pub fn paper_default() -> SimConfig {
        SimConfig {
            scheme: Scheme::Aaw,
            workload: Workload::uniform(),
            sim_time_secs: 100_000.0,
            num_clients: 100,
            db_size: 10_000,
            item_bytes: 8192,
            cache_fraction: 0.02,
            broadcast_period_secs: 20.0,
            downlink_bps: 10_000.0,
            uplink_bps: 10_000.0,
            control_bytes: 512,
            mean_think_secs: 100.0,
            items_per_query_mean: 1.0,
            items_per_update_mean: 5.0,
            mean_update_interarrival_secs: 100.0,
            mean_disconnect_secs: 4_000.0,
            p_disconnect: 0.1,
            window_intervals: 10,
            timestamp_bits: 48.0,
            header_bits: 64.0,
            checking_mode: CheckingMode::FullCache,
            downlink_topology: DownlinkTopology::Shared,
            p_report_loss: 0.0,
            energy_tx_per_bit: 100.0,
            energy_rx_per_bit: 1.0,
            gcore_groups: 64,
            gcore_retention_intervals: 100,
            snoop_broadcasts: false,
            threads: 1,
            pool_min_shard_clients: 1,
            pool_min_shard_items: 1024,
            faults: FaultPlan::none(),
            cells: CellTopology::single(),
            seed: 0x1997_AD07,
        }
    }

    /// Builder-style scheme override.
    pub fn with_scheme(mut self, scheme: Scheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Builder-style workload override.
    pub fn with_workload(mut self, workload: Workload) -> Self {
        self.workload = workload;
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style simulated-horizon override (seconds).
    pub fn with_sim_time(mut self, sim_time_secs: f64) -> Self {
        self.sim_time_secs = sim_time_secs;
        self
    }

    /// Builder-style database-size override (items).
    pub fn with_db_size(mut self, db_size: u32) -> Self {
        self.db_size = db_size;
        self
    }

    /// Builder-style client-population override.
    pub fn with_num_clients(mut self, num_clients: u32) -> Self {
        self.num_clients = num_clients;
        self
    }

    /// Builder-style worker-thread override (`0` = one per core). The
    /// result is bit-identical for every value; this knob only trades
    /// wall time.
    pub fn with_threads(mut self, threads: u32) -> Self {
        self.threads = threads;
        self
    }

    /// Builder-style override of the minimum clients per worker chunk
    /// (see [`SimConfig::pool_min_shard_clients`]). Wall-time only.
    pub fn with_pool_min_shard_clients(mut self, min: u32) -> Self {
        self.pool_min_shard_clients = min;
        self
    }

    /// Builder-style override of the minimum recency entries per worker
    /// chunk for the BS index build (see
    /// [`SimConfig::pool_min_shard_items`]). Wall-time only.
    pub fn with_pool_min_shard_items(mut self, min: u32) -> Self {
        self.pool_min_shard_items = min;
        self
    }

    /// Builder-style fault-plan override.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Builder-style cell-topology override.
    pub fn with_cells(mut self, cells: CellTopology) -> Self {
        self.cells = cells;
        self
    }

    /// Client cache capacity in items (at least 1).
    pub fn cache_capacity_items(&self) -> u32 {
        (((self.db_size as f64) * self.cache_fraction).round() as u32).max(1)
    }

    /// Window length `w · L` in seconds.
    pub fn window_secs(&self) -> f64 {
        self.window_intervals as f64 * self.broadcast_period_secs
    }

    /// One data item's transmission size in bits (payload only).
    pub fn item_bits(&self) -> Bits {
        (self.item_bytes * 8) as f64
    }

    /// Checks parameter consistency.
    ///
    /// # Errors
    /// Returns the first violated constraint as a [`ConfigError`]; its
    /// `Display` names the field, the rejected value, and the bound.
    pub fn validate(&self) -> Result<(), ConfigError> {
        fn pos(field: &'static str, value: f64) -> Result<(), ConfigError> {
            if value.is_finite() && value > 0.0 {
                Ok(())
            } else {
                Err(ConfigError::NotPositive { field, value })
            }
        }
        fn count(field: &'static str, value: u64) -> Result<(), ConfigError> {
            if value > 0 {
                Ok(())
            } else {
                Err(ConfigError::ZeroCount { field })
            }
        }
        pos("sim_time_secs", self.sim_time_secs)?;
        pos("broadcast_period_secs", self.broadcast_period_secs)?;
        pos("downlink_bps", self.downlink_bps)?;
        pos("uplink_bps", self.uplink_bps)?;
        pos("mean_think_secs", self.mean_think_secs)?;
        pos("items_per_query_mean", self.items_per_query_mean)?;
        pos("items_per_update_mean", self.items_per_update_mean)?;
        pos(
            "mean_update_interarrival_secs",
            self.mean_update_interarrival_secs,
        )?;
        pos("mean_disconnect_secs", self.mean_disconnect_secs)?;
        pos("timestamp_bits", self.timestamp_bits)?;
        if self.header_bits < 0.0 || !self.header_bits.is_finite() {
            return Err(ConfigError::Negative {
                field: "header_bits",
                value: self.header_bits,
            });
        }
        count("num_clients", u64::from(self.num_clients))?;
        count("db_size", self.db_size as u64)?;
        count("item_bytes", self.item_bytes)?;
        if !(0.0..=1.0).contains(&self.p_disconnect) {
            return Err(ConfigError::OutOfRange {
                field: "p_disconnect",
                value: self.p_disconnect,
                bounds: "[0, 1]",
            });
        }
        if !(self.cache_fraction > 0.0 && self.cache_fraction <= 1.0) {
            return Err(ConfigError::OutOfRange {
                field: "cache_fraction",
                value: self.cache_fraction,
                bounds: "(0, 1]",
            });
        }
        count("window_intervals", self.window_intervals as u64)?;
        if !(0.0..=1.0).contains(&self.p_report_loss) {
            return Err(ConfigError::OutOfRange {
                field: "p_report_loss",
                value: self.p_report_loss,
                bounds: "[0, 1]",
            });
        }
        self.faults.validate()?;
        self.cells.validate()?;
        if let DownlinkTopology::Dedicated { broadcast_share } = self.downlink_topology {
            if !(broadcast_share > 0.0 && broadcast_share < 1.0) {
                return Err(ConfigError::OutOfRange {
                    field: "broadcast_share",
                    value: broadcast_share,
                    bounds: "(0, 1)",
                });
            }
        }
        if self.energy_tx_per_bit < 0.0 {
            return Err(ConfigError::Negative {
                field: "energy_tx_per_bit",
                value: self.energy_tx_per_bit,
            });
        }
        if self.energy_rx_per_bit < 0.0 {
            return Err(ConfigError::Negative {
                field: "energy_rx_per_bit",
                value: self.energy_rx_per_bit,
            });
        }
        count("pool_min_shard_clients", self.pool_min_shard_clients as u64)?;
        count("pool_min_shard_items", self.pool_min_shard_items as u64)?;
        count("gcore_groups", self.gcore_groups as u64)?;
        count(
            "gcore_retention_intervals",
            self.gcore_retention_intervals as u64,
        )?;
        if let Pattern::HotCold {
            hot_lo,
            hot_hi,
            hot_prob,
        } = self.workload.query
        {
            if hot_lo > hot_hi {
                return Err(ConfigError::EmptyHotRegion { hot_lo, hot_hi });
            }
            if hot_hi >= self.db_size {
                return Err(ConfigError::HotRegionOutOfBounds {
                    hot_hi,
                    db_size: self.db_size,
                });
            }
            if !(0.0..=1.0).contains(&hot_prob) {
                return Err(ConfigError::OutOfRange {
                    field: "hot_prob",
                    value: hot_prob,
                    bounds: "[0, 1]",
                });
            }
        }
        if let Pattern::Zipf { theta } = self.workload.query {
            pos("zipf theta", theta)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid() {
        let cfg = SimConfig::paper_default();
        cfg.validate().expect("Table 1 defaults must validate");
        assert_eq!(cfg.num_clients, 100);
        assert_eq!(cfg.db_size, 10_000);
        assert_eq!(cfg.cache_capacity_items(), 200);
        assert_eq!(cfg.window_secs(), 200.0);
        assert_eq!(cfg.item_bits(), 65_536.0);
    }

    #[test]
    fn builder_overrides() {
        let cfg = SimConfig::paper_default()
            .with_scheme(Scheme::Bs)
            .with_workload(Workload::hotcold())
            .with_seed(7)
            .with_sim_time(5_000.0)
            .with_db_size(2_000)
            .with_num_clients(25)
            .with_threads(4)
            .with_pool_min_shard_clients(64)
            .with_pool_min_shard_items(4096);
        assert_eq!(cfg.scheme, Scheme::Bs);
        assert_eq!(cfg.threads, 4);
        assert_eq!(cfg.pool_min_shard_clients, 64);
        assert_eq!(cfg.pool_min_shard_items, 4096);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.workload.query, Pattern::paper_hotcold());
        assert_eq!(cfg.sim_time_secs, 5_000.0);
        assert_eq!(cfg.db_size, 2_000);
        assert_eq!(cfg.num_clients, 25);
    }

    #[test]
    fn validation_errors_are_typed() {
        let mut c = SimConfig::paper_default();
        c.p_disconnect = 1.5;
        assert_eq!(
            c.validate(),
            Err(ConfigError::OutOfRange {
                field: "p_disconnect",
                value: 1.5,
                bounds: "[0, 1]",
            })
        );

        let mut c = SimConfig::paper_default();
        c.db_size = 0;
        assert_eq!(
            c.validate(),
            Err(ConfigError::ZeroCount { field: "db_size" })
        );

        let mut c = SimConfig::paper_default();
        c.pool_min_shard_clients = 0;
        assert_eq!(
            c.validate(),
            Err(ConfigError::ZeroCount {
                field: "pool_min_shard_clients"
            })
        );

        let mut c = SimConfig::paper_default();
        c.pool_min_shard_items = 0;
        assert_eq!(
            c.validate(),
            Err(ConfigError::ZeroCount {
                field: "pool_min_shard_items"
            })
        );

        let c = SimConfig::paper_default()
            .with_db_size(50)
            .with_workload(Workload::hotcold());
        assert_eq!(
            c.validate(),
            Err(ConfigError::HotRegionOutOfBounds {
                hot_hi: 99,
                db_size: 50
            })
        );
    }

    #[test]
    fn hotcold_pattern_matches_paper() {
        match Pattern::paper_hotcold() {
            Pattern::HotCold {
                hot_lo,
                hot_hi,
                hot_prob,
            } => {
                assert_eq!((hot_lo, hot_hi), (0, 99));
                assert_eq!(hot_prob, 0.8);
            }
            other => panic!("unexpected pattern {other:?}"),
        }
    }

    #[test]
    fn validation_catches_bad_configs() {
        let base = SimConfig::paper_default;
        let mut c = base();
        c.p_disconnect = 1.5;
        assert!(c.validate().is_err());

        let mut c = base();
        c.cache_fraction = 0.0;
        assert!(c.validate().is_err());

        let mut c = base();
        c.db_size = 0;
        assert!(c.validate().is_err());

        let mut c = base();
        c.downlink_bps = -1.0;
        assert!(c.validate().is_err());

        let mut c = base();
        c.workload.query = Pattern::HotCold {
            hot_lo: 50,
            hot_hi: 10,
            hot_prob: 0.8,
        };
        assert!(c.validate().is_err());

        let mut c = base();
        c.p_report_loss = 1.5;
        assert!(c.validate().is_err());

        let mut c = base();
        c.faults.p_uplink_loss = -0.1;
        assert!(c.validate().is_err());

        let mut c = base();
        c.faults.downlink.mean_burst_intervals = 0.5;
        assert!(c.validate().is_err());

        let mut c = base();
        c.faults.recovery_secs = f64::NAN;
        assert!(c.validate().is_err());

        let mut c = base();
        c.downlink_topology = DownlinkTopology::Dedicated {
            broadcast_share: 1.0,
        };
        assert!(c.validate().is_err());

        let mut c = base();
        c.downlink_topology = DownlinkTopology::Dedicated {
            broadcast_share: 0.2,
        };
        assert!(c.validate().is_ok());

        let mut c = base();
        c.gcore_groups = 0;
        assert!(c.validate().is_err());

        let mut c = base();
        c.db_size = 50;
        c.workload.query = Pattern::paper_hotcold();
        assert!(c.validate().is_err(), "hot region must fit in the DB");
    }

    #[test]
    fn cell_topology_validation() {
        let single = CellTopology::single();
        assert!(!single.is_multi());
        assert!(single.validate().is_ok());

        // Single-cell topologies are inert: bogus mobility knobs are
        // never read, so they must not fail validation.
        let inert = CellTopology {
            cells: 1,
            mean_residency_secs: -5.0,
            handoff_secs: f64::NAN,
            p_roam: 9.0,
        };
        assert!(inert.validate().is_ok());

        let mut c = CellTopology::single();
        c.cells = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroCount { field: "cells" }));

        let mut c = CellTopology::single();
        c.cells = 4;
        assert!(c.is_multi());
        assert!(c.validate().is_ok());

        c.mean_residency_secs = 0.0;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::NotPositive {
                field: "mean_residency_secs",
                ..
            })
        ));

        let mut c = CellTopology::single();
        c.cells = 2;
        c.handoff_secs = -1.0;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::Negative {
                field: "handoff_secs",
                ..
            })
        ));

        let mut c = CellTopology::single();
        c.cells = 2;
        c.handoff_secs = 0.0; // zero blackout is allowed
        c.p_roam = 0.0; // never roaming is allowed
        assert!(c.validate().is_ok());
        c.p_roam = 1.5;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::OutOfRange {
                field: "p_roam",
                ..
            })
        ));

        // SimConfig::validate reaches through to the topology.
        let mut cfg = SimConfig::paper_default();
        assert_eq!(cfg.cells, CellTopology::single());
        cfg.cells.cells = 3;
        cfg.cells.mean_residency_secs = -1.0;
        assert!(cfg.validate().is_err());
        cfg = SimConfig::paper_default().with_cells(CellTopology {
            cells: 3,
            ..CellTopology::single()
        });
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn cache_capacity_never_zero() {
        let mut c = SimConfig::paper_default();
        c.db_size = 10;
        c.cache_fraction = 0.01;
        assert_eq!(c.cache_capacity_items(), 1);
    }

    #[test]
    fn scheme_labels_match_figures() {
        assert_eq!(Scheme::Aaw.label(), "adaptive with adjusting window");
        assert_eq!(Scheme::Afw.label(), "adaptive with fixed window");
        assert_eq!(Scheme::SimpleChecking.label(), "simple checking");
        assert_eq!(Scheme::Bs.label(), "bit sequences");
        assert_eq!(Scheme::PAPER_SET.len(), 4);
        // short names unique
        let mut shorts: Vec<_> = Scheme::ALL.iter().map(|s| s.short()).collect();
        shorts.sort_unstable();
        shorts.dedup();
        assert_eq!(shorts.len(), Scheme::ALL.len());
    }
}
