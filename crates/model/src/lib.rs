//! # mobicache-model — shared domain model
//!
//! Core vocabulary shared by every crate in the workspace:
//!
//! * [`error`] — typed configuration errors ([`ConfigError`]).
//! * [`faults`] — the declarative fault-injection plan ([`FaultPlan`]):
//!   bursty downlink loss, uplink loss with retry/backoff, and scheduled
//!   server crashes.
//! * [`ids`] — strongly typed item and client identifiers.
//! * [`params`] — the simulation parameter set, encoding the paper's
//!   Table 1 defaults, plus the [`params::Scheme`] enumeration of
//!   invalidation strategies.
//! * [`msg`] — the uplink/downlink message taxonomy with bit-level size
//!   accounting (the simulator charges channels by message size, so size
//!   formulas live next to the message definitions).
//! * [`units`] — small helpers for bits/bytes/bandwidth conversions.

pub mod error;
pub mod faults;
pub mod ids;
pub mod msg;
pub mod params;
pub mod units;

pub use error::ConfigError;
pub use faults::{ChannelFaults, FaultPlan, RetryPolicy};
pub use ids::{ClientId, ItemId};
pub use msg::{DownlinkKind, SizeParams, UplinkKind};
pub use params::{
    CellTopology, CheckingMode, DownlinkTopology, Pattern, Scheme, SimConfig, Workload,
};
pub use units::{bits_of_bytes, bits_per_id, Bits};
