//! Bits, bytes and bandwidth helpers.
//!
//! All channel accounting is done in **bits** (the paper reports "uplink
//! communication cost per query (bits/query)" and bandwidths in bits per
//! second), carried as `f64` so fractional analytic sizes such as
//! `log₂N` compose cleanly.

/// A quantity of bits.
pub type Bits = f64;

/// Converts a byte count to bits.
#[inline]
pub fn bits_of_bytes(bytes: u64) -> Bits {
    (bytes * 8) as f64
}

/// Number of bits needed to name one of `n` items: `⌈log₂ n⌉`, minimum 1.
///
/// This is the `log₂N` factor in the paper's report-size formulas
/// (`IR(w)` is `n_w · (log₂N + b_T)` bits; `IR(BS)` is `2N + b_T·log₂N`).
#[inline]
pub fn bits_per_id(n: u64) -> Bits {
    if n <= 1 {
        1.0
    } else {
        ((n as f64).log2().ceil()).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_to_bits() {
        assert_eq!(bits_of_bytes(512), 4096.0);
        assert_eq!(bits_of_bytes(8192), 65536.0);
        assert_eq!(bits_of_bytes(0), 0.0);
    }

    #[test]
    fn id_width_is_ceil_log2() {
        assert_eq!(bits_per_id(1), 1.0);
        assert_eq!(bits_per_id(2), 1.0);
        assert_eq!(bits_per_id(1000), 10.0);
        assert_eq!(bits_per_id(1024), 10.0);
        assert_eq!(bits_per_id(1025), 11.0);
        assert_eq!(bits_per_id(80_000), 17.0);
    }
}
