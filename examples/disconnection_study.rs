//! Disconnection study: what actually happens to a cache across a long
//! doze period under each scheme — full drops vs limbo salvage — using
//! the per-scheme behaviour counters rather than just throughput.
//!
//! ```text
//! cargo run --release --example disconnection_study
//! ```

use mobicache::{run, RunOptions, Scheme, SimConfig, Workload};

fn main() {
    // Aggressive disconnection regime: 30 % of gaps are disconnections of
    // 2000 s mean (10x the broadcast window), hot/cold locality so the
    // cache is worth salvaging.
    let mut base = SimConfig::paper_default()
        .with_workload(Workload::hotcold())
        .with_sim_time(40_000.0);
    base.p_disconnect = 0.3;
    base.mean_disconnect_secs = 2_000.0;

    println!(
        "{:<22} {:>9} {:>10} {:>10} {:>10} {:>10} {:>10} {:>9}",
        "scheme", "answered", "full drops", "salvaged", "dropped", "tlbs", "checks", "hit %"
    );
    for scheme in [
        Scheme::TsNoCheck,
        Scheme::SimpleChecking,
        Scheme::Gcore,
        Scheme::Bs,
        Scheme::Afw,
        Scheme::Aaw,
    ] {
        let cfg = base.clone().with_scheme(scheme);
        let m = run(&cfg, RunOptions::default())
            .expect("valid config")
            .metrics;
        println!(
            "{:<22} {:>9} {:>10} {:>10} {:>10} {:>10} {:>10} {:>8.1}%",
            scheme.short(),
            m.queries_answered,
            m.clients.full_drops,
            m.clients.salvaged,
            m.clients.limbo_dropped,
            m.clients.tlbs_sent,
            m.clients.checks_sent,
            100.0 * m.hit_ratio,
        );
    }
    println!(
        "\nReading the table: plain TS throws whole caches away on every long\n\
         disconnection; BS salvages silently but pays a 2N-bit report every\n\
         period; simple checking salvages via explicit (large) uplink checks;\n\
         the adaptive schemes salvage via one uplinked timestamp each."
    );
    println!(
        "\nServer view (AAW): re-run with that scheme to see the report mix \
         (window vs enlarged vs BS) in Metrics::server."
    );
    let aaw = run(
        &base.clone().with_scheme(Scheme::Aaw),
        RunOptions::default(),
    )
    .expect("valid config")
    .metrics;
    println!(
        "AAW server broadcast {} plain windows, {} enlarged windows, {} bit-sequence reports.",
        aaw.server.window_reports, aaw.server.enlarged_reports, aaw.server.bs_reports
    );
}
