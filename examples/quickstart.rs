//! Quickstart: simulate one configuration under each invalidation scheme
//! and print the paper's two headline metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mobicache::{run, RunOptions, Scheme, SimConfig, Workload};

fn main() {
    // Table 1 defaults, HOTCOLD workload, shortened horizon for a demo.
    let base = SimConfig::paper_default()
        .with_workload(Workload::hotcold())
        .with_sim_time(20_000.0)
        .with_db_size(10_000);

    println!(
        "{:<34} {:>10} {:>12} {:>10} {:>12}",
        "scheme", "answered", "bits/query", "hit ratio", "latency (s)"
    );
    for scheme in Scheme::ALL {
        let cfg = base.clone().with_scheme(scheme);
        let result = run(&cfg, RunOptions::default()).expect("valid config");
        let m = &result.metrics;
        println!(
            "{:<34} {:>10} {:>12.1} {:>10.3} {:>12.1}",
            scheme.label(),
            m.queries_answered,
            m.uplink_validity_bits_per_query,
            m.hit_ratio,
            m.mean_query_latency_secs,
        );
    }
    println!();
    println!(
        "The adaptive schemes (AFW/AAW) keep the validity uplink near the\n\
         bit-sequences zero while answering nearly as many queries as the\n\
         checking scheme — the paper's headline trade-off."
    );
}
