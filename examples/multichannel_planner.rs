//! Multi-channel planner (§6 future work): for a given database size,
//! find the broadcast-channel share that maximises bit-sequences
//! throughput on a split downlink, and compare against the paper's
//! shared channel.
//!
//! ```text
//! cargo run --release --example multichannel_planner            # N = 40 000
//! cargo run --release --example multichannel_planner -- 80000   # custom N
//! ```

use mobicache::{run, DownlinkTopology, RunOptions, Scheme, SimConfig, Workload};

fn main() {
    let db_size: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40_000);

    let base = SimConfig::paper_default()
        .with_scheme(Scheme::Bs)
        .with_workload(Workload::uniform())
        .with_db_size(db_size)
        .with_sim_time(30_000.0);

    let shared = run(&base, RunOptions::default())
        .expect("valid config")
        .metrics;
    println!(
        "N = {db_size}: shared channel (the paper's model) answers {} queries \
         ({}% downlink busy, {} report preemptions)",
        shared.queries_answered,
        (shared.downlink_utilization * 100.0).round(),
        shared.downlink_preemptions
    );
    println!();
    println!(
        "{:>16} {:>12} {:>12}",
        "broadcast share", "answered", "vs shared"
    );

    let mut best: Option<(f64, u64)> = None;
    for share in [0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5] {
        let mut cfg = base.clone();
        cfg.downlink_topology = DownlinkTopology::Dedicated {
            broadcast_share: share,
        };
        let m = run(&cfg, RunOptions::default())
            .expect("valid config")
            .metrics;
        println!(
            "{:>16} {:>12} {:>11.0}%",
            share,
            m.queries_answered,
            100.0 * m.queries_answered as f64 / shared.queries_answered as f64
        );
        if best.is_none_or(|(_, q)| m.queries_answered > q) {
            best = Some((share, m.queries_answered));
        }
    }
    let (share, answered) = best.expect("non-empty sweep");
    println!(
        "\nBest split for BS at N = {db_size}: {share} broadcast share \
         ({answered} answered, {:+.0}% over the shared channel).",
        100.0 * (answered as f64 / shared.queries_answered as f64 - 1.0)
    );
    println!(
        "The report channel stops stealing data bandwidth — exactly the \
         multiple-channel environment Section 6 of the paper proposes to study."
    );
}
