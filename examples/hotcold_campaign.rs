//! HOTCOLD campaign: reproduce the paper's Figure 11/12 sweep (database
//! size under the hot/cold query pattern) and print both headline
//! metrics side by side, demonstrating the experiments API.
//!
//! ```text
//! cargo run --release --example hotcold_campaign            # full horizon
//! cargo run --release --example hotcold_campaign -- --smoke # 1/20 horizon
//! ```

use mobicache_experiments::figures::{fig11, fig12};
use mobicache_experiments::{chart, run_figure, RunScale};
use mobicache_model::Scheme;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke {
        RunScale::smoke()
    } else {
        RunScale::default()
    };

    let throughput = run_figure(&fig11::spec(), scale).expect("valid spec");
    let uplink = run_figure(&fig12::spec(), scale).expect("valid spec");

    println!("{}", chart::render(&throughput));
    println!("{}", chart::render_table(&throughput));
    println!("{}", chart::render(&uplink));
    println!("{}", chart::render_table(&uplink));

    // The paper's claim, checked numerically: the adaptive schemes answer
    // nearly as many queries as simple checking at a fraction of its
    // validity uplink cost.
    let last = |fig: &mobicache_experiments::FigureResult, s: Scheme| {
        *fig.curve(s).last().expect("non-empty curve")
    };
    let sc_q = last(&throughput, Scheme::SimpleChecking);
    let aaw_q = last(&throughput, Scheme::Aaw);
    let sc_u = last(&uplink, Scheme::SimpleChecking);
    let aaw_u = last(&uplink, Scheme::Aaw);
    println!(
        "At the largest database: AAW answers {:.0}% of simple checking's queries \
         while paying {:.0}% of its validity uplink.",
        100.0 * aaw_q / sc_q,
        100.0 * aaw_u / sc_u
    );
}
