//! Asymmetric communication environments (§1 and Figures 15/16): sweep
//! the uplink bandwidth down to 1 % of the downlink and find the
//! crossover point below which the adaptive schemes beat the checking
//! scheme.
//!
//! ```text
//! cargo run --release --example asymmetric_uplink
//! ```

use mobicache::{run, RunOptions, Scheme, SimConfig, Workload};

fn main() {
    let mut base = SimConfig::paper_default()
        .with_workload(Workload::uniform())
        .with_db_size(5_000)
        .with_sim_time(30_000.0);
    base.mean_disconnect_secs = 4_000.0;

    println!(
        "{:>10} {:>12} {:>12} {:>14} {:>12}",
        "uplink bps", "aaw", "afw", "simple check", "bit seq"
    );
    let mut crossover: Option<f64> = None;
    for bw in [100.0, 150.0, 200.0, 300.0, 500.0, 700.0, 1_000.0, 10_000.0] {
        let mut row = Vec::new();
        for scheme in [Scheme::Aaw, Scheme::Afw, Scheme::SimpleChecking, Scheme::Bs] {
            let mut cfg = base.clone().with_scheme(scheme);
            cfg.uplink_bps = bw;
            let m = run(&cfg, RunOptions::default())
                .expect("valid config")
                .metrics;
            row.push(m.queries_answered);
        }
        println!(
            "{:>10} {:>12} {:>12} {:>14} {:>12}",
            bw, row[0], row[1], row[2], row[3]
        );
        if row[0] > row[2] {
            crossover = Some(bw);
        }
    }
    match crossover {
        Some(bw) => println!(
            "\nAAW out-throughputs simple checking at uplink bandwidths up to \
             ~{bw} bits/second — the asymmetric-environment case the paper \
             motivates in Section 1 (uplink transmission costs distance^4 in \
             client battery power)."
        ),
        None => println!("\nNo crossover in this sweep (try longer horizons)."),
    }
}
